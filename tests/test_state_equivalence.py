"""Equivalence layer: struct-of-arrays assignment state vs the dict oracle.

The simulated platform keeps assignment bookkeeping in the struct-of-arrays
:class:`~repro.crowd.platform._SoaAssignmentLedger` (parallel columns keyed
by dense assignment id) and draws every latency/label value from per-worker
pre-drawn :class:`~repro.crowd.worker.WorkerDrawBlock` streams.  The seed
per-dict implementation survives as the registered scan-oracle twin
(``_DictAssignmentLedger``, reachable via ``use_soa_state=False``), and both
ledgers consume the same worker streams — so every run must be bit-identical
across ledgers, gate settings, and RNG-block sizes.  These tests are what
makes that by-construction claim falsifiable: a mismatch means a ledger
transition diverged (a stale status byte, a lost event handle, a draw pulled
from the wrong stream) and would silently change every published benchmark
number.

Block size gets its own axis because it is the one knob that *looks* like it
could perturb the stream: blocks are a prefetch window over per-worker
sequential streams, so ``draw_block_size`` 1, 3, 64, or 1024 — including
sizes that do not divide the number of draws, blocks exhausted mid-run, and
workers replaced mid-block by pool maintenance — must all fingerprint
identically to the dict-oracle reference.

The sweep classes carry the ``equivalence`` marker so CI can run the sweep
standalone: ``pytest -m equivalence``.
"""

import pytest

from equivalence import (
    STATE_VARIANTS,
    StateVariant,
    assert_state_equivalent,
    behavioural_view,
    labeling_config,
    run_fingerprint,
)


@pytest.mark.equivalence
class TestStateSweep:
    """Seeds x pool sizes x batch configurations, soa vs dict-oracle."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("pool_size", [3, 9, 17])
    def test_plain_mitigation(self, seed, pool_size):
        assert_state_equivalent(labeling_config(pool_size=pool_size, seed=seed))

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("votes_required", [2, 3])
    def test_quality_control_redundancy(self, seed, votes_required):
        assert_state_equivalent(
            labeling_config(pool_size=8, votes_required=votes_required, seed=seed),
            num_records=40,
        )

    @pytest.mark.parametrize("seed", [0, 4])
    def test_capped_mitigation(self, seed):
        """Termination caps exercise ``mark_terminated`` without eviction."""
        assert_state_equivalent(
            labeling_config(pool_size=8, max_extra_assignments=1, seed=seed)
        )

    @pytest.mark.parametrize("seed", [0, 4])
    def test_grouped_records_per_task(self, seed):
        """Ng > 1 routes draws through the vectorized block take path."""
        assert_state_equivalent(
            labeling_config(pool_size=6, records_per_task=5, seed=seed)
        )

    @pytest.mark.parametrize("seed", [0, 1, 5])
    def test_maintenance_and_abandonment(self, seed):
        """Workers depart mid-run (eviction + abandonment): their draw
        blocks are dropped mid-stream and replacements open fresh ones —
        the ledger must still replay the dict oracle event for event."""
        assert_state_equivalent(
            labeling_config(
                pool_size=10,
                maintenance_threshold=8.0,
                abandonment_rate=0.05,
                seed=seed,
            )
        )


@pytest.mark.equivalence
class TestBlockBoundaries:
    """RNG-block boundary coverage: block size is a non-observable."""

    #: Sizes chosen to force every boundary shape: 1 refills on each draw,
    #: 3 never divides the multi-record takes below, 64 is the default,
    #: 1024 outlives most workers' draw counts entirely.
    BLOCK_SIZES = (1, 3, 64, 1024)

    def _reference(self, config, num_records=60, **overrides):
        return behavioural_view(
            run_fingerprint(
                config, num_records, use_soa_state=False, **overrides
            )
        )

    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_block_size_invariance(self, block_size):
        """Every block size fingerprints identically to the dict oracle."""
        config = labeling_config(pool_size=9, seed=2)
        reference = self._reference(config)
        run = run_fingerprint(
            config, 60, use_soa_state=True, draw_block_size=block_size
        )
        assert behavioural_view(run) == reference

    @pytest.mark.parametrize("block_size", [3, 7])
    def test_block_not_dividing_draw_count(self, block_size):
        """Ng=5 with small odd blocks: every multi-record take straddles a
        refill boundary somewhere in the run."""
        config = labeling_config(pool_size=6, records_per_task=5, seed=4)
        reference = self._reference(config)
        run = run_fingerprint(
            config, 60, use_soa_state=True, draw_block_size=block_size
        )
        assert behavioural_view(run) == reference

    @pytest.mark.parametrize("block_size", [1, 2, 64])
    def test_profile_replaced_mid_block(self, block_size):
        """Pool maintenance evicts workers with unconsumed block values;
        the replacement's fresh stream must not shift anyone else's."""
        config = labeling_config(
            pool_size=10,
            maintenance_threshold=8.0,
            abandonment_rate=0.05,
            seed=5,
        )
        reference = self._reference(config)
        run = run_fingerprint(
            config, 60, use_soa_state=True, draw_block_size=block_size
        )
        assert behavioural_view(run) == reference

    def test_exhausted_block_refill(self):
        """A run long enough to exhaust the default block repeatedly: the
        refill path itself is stream-transparent."""
        config = labeling_config(pool_size=3, seed=1)
        reference = self._reference(config, num_records=120)
        run = run_fingerprint(
            config, 120, use_soa_state=True, draw_block_size=4
        )
        assert behavioural_view(run) == reference

    def test_block_size_axis_inside_state_sweep(self):
        """The variant grid itself can carry the block-size axis."""
        variants = tuple(STATE_VARIANTS) + (
            StateVariant("soa-tiny-blocks", use_soa_state=True, draw_block_size=1),
            StateVariant("soa-huge-blocks", use_soa_state=True, draw_block_size=1024),
        )
        assert_state_equivalent(
            labeling_config(pool_size=8, seed=3), variants=variants
        )
