"""Tests for repro.service: HTTP routes, pagination, caching, SSE, shutdown.

Each test drives a real ``ThreadingHTTPServer`` on an ephemeral port through
``http.client`` — the same transport real clients use — so routing, headers,
and SSE framing are exercised end to end, not mocked.
"""

from __future__ import annotations

import http.client
import json
import threading
from contextlib import contextmanager

import pytest

from repro.api import create_backend, register_backend, unregister_backend
from repro.api.engine import Engine, JobStatus
from repro.api.wire import event_to_dict, spec_from_dict
from repro.service import JobNotFound, LabelingService, start_server


def job_payload(seed: int = 0, num_records: int = 10, **extra) -> dict:
    """A small, fully deterministic wire document."""
    payload = {
        "dataset": {
            "generator": "labeling_workload",
            "params": {"num_records": 2 * num_records, "seed": seed},
        },
        "config": {
            "pool_size": 4,
            "learning_strategy": "none",
            "maintenance_threshold": None,
            "seed": seed,
        },
        "population": {"factory": "mixed_speed", "seed": seed},
        "num_records": num_records,
        "name": f"test-{seed}",
    }
    payload.update(extra)
    return payload


def request(host, port, method, path, body=None, headers=None):
    """One HTTP request; returns (status, parsed JSON or None, headers)."""
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        request_headers = dict(headers or {})
        if payload is not None:
            request_headers["Content-Type"] = "application/json"
        conn.request(method, path, body=payload, headers=request_headers)
        response = conn.getresponse()
        raw = response.read()
        document = json.loads(raw) if raw else None
        return response.status, document, dict(response.getheaders())
    finally:
        conn.close()


def read_sse(host, port, path, timeout=120):
    """Consume a whole SSE response; returns (status, list of data dicts)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        status = response.status
        raw = response.read().decode("utf-8")
    finally:
        conn.close()
    frames = []
    for chunk in raw.split("\n\n"):
        if not chunk.strip():
            continue
        data_lines = [
            line[len("data: ") :]
            for line in chunk.splitlines()
            if line.startswith("data: ")
        ]
        frames.append(json.loads("\n".join(data_lines)))
    return status, frames


@contextmanager
def held_backend(name: str = "held-simulated"):
    """A simulated backend whose pool initialisation blocks on an Event,
    pinning any job that uses it in RUNNING until released."""
    release = threading.Event()
    started = threading.Event()

    def factory(**kwargs):
        platform = create_backend("simulated", **kwargs)
        original = platform.initialize_pool

        def initialize_pool(size):
            started.set()
            assert release.wait(timeout=60), "held backend never released"
            return original(size)

        platform.initialize_pool = initialize_pool
        return platform

    register_backend(name, factory)
    try:
        yield name, started, release
    finally:
        release.set()
        unregister_backend(name)


@pytest.fixture()
def live():
    """A live service on an ephemeral port; yields (host, port, service)."""
    service = LabelingService(max_workers=4)
    server = start_server(service, port=0)
    host, port = server.server_address[:2]
    yield host, port, service
    server.shutdown()
    server.server_close()
    service.close(wait=False)


class TestServiceApp:
    def test_unknown_ids_raise_job_not_found(self):
        with LabelingService(max_workers=1) as service:
            for operation in (
                lambda: service.get_job("job-404"),
                lambda: service.labels_page("job-404"),
                lambda: service.events("job-404"),
                lambda: service.delete("job-404"),
            ):
                with pytest.raises(JobNotFound, match="job-404"):
                    operation()

    def test_negative_pagination_rejected_before_lookup(self):
        with LabelingService(max_workers=1) as service:
            with pytest.raises(ValueError, match="offset"):
                service.labels_page("whatever", offset=-1)
            with pytest.raises(ValueError, match="limit"):
                service.labels_page("whatever", limit=-5)

    def test_submit_after_close_rejected(self):
        service = LabelingService(max_workers=1)
        service.close()
        with pytest.raises(RuntimeError, match="shutting down"):
            service.submit(job_payload())


class TestHTTPEndpoints:
    def test_submit_poll_labels_flow(self, live):
        host, port, service = live
        status, submitted, _ = request(host, port, "POST", "/jobs", body=job_payload(seed=5))
        assert status == 201
        job_id = submitted["id"]
        assert submitted["status"] in ("pending", "running", "succeeded")

        # Block server-side for completion, then poll the public surface.
        service.engine.get_job(job_id).result(timeout=120)
        status, detail, _ = request(host, port, "GET", f"/jobs/{job_id}")
        assert status == 200
        assert detail["status"] == "succeeded"
        assert detail["terminal"] is True
        assert detail["result"]["records_labeled"] == 10
        assert detail["stats"]["labels"] == 10
        assert detail["spec"]["population"] == {"factory": "mixed_speed", "seed": 5}

        status, listing, _ = request(host, port, "GET", "/jobs")
        assert status == 200
        assert [job["id"] for job in listing["jobs"]] == [job_id]

        status, page, _ = request(
            host, port, "GET", f"/jobs/{job_id}/labels?offset=0&limit=4"
        )
        assert status == 200
        assert page["total"] == 10
        assert len(page["labels"]) == 4
        # Pages tile the label set without overlap, ordered by record id.
        _, rest, _ = request(host, port, "GET", f"/jobs/{job_id}/labels?offset=4")
        record_ids = [r for r, _ in page["labels"]] + [r for r, _ in rest["labels"]]
        assert record_ids == sorted(record_ids)
        assert len(record_ids) == 10

    def test_pagination_edge_cases(self, live):
        host, port, service = live
        _, submitted, _ = request(host, port, "POST", "/jobs", body=job_payload(seed=6))
        job_id = submitted["id"]
        service.engine.get_job(job_id).result(timeout=120)

        _, past_end, _ = request(
            host, port, "GET", f"/jobs/{job_id}/labels?offset=999&limit=5"
        )
        assert past_end["labels"] == [] and past_end["total"] == 10

        _, zero_limit, _ = request(
            host, port, "GET", f"/jobs/{job_id}/labels?offset=0&limit=0"
        )
        assert zero_limit["labels"] == [] and zero_limit["total"] == 10

        status, error, _ = request(
            host, port, "GET", f"/jobs/{job_id}/labels?offset=-1"
        )
        assert status == 400 and "offset" in error["error"]

        status, error, _ = request(
            host, port, "GET", f"/jobs/{job_id}/labels?limit=banana"
        )
        assert status == 400 and "limit" in error["error"]

    def test_terminal_labels_are_cacheable_with_etag(self, live):
        host, port, service = live
        _, submitted, _ = request(host, port, "POST", "/jobs", body=job_payload(seed=7))
        job_id = submitted["id"]
        service.engine.get_job(job_id).result(timeout=120)

        status, _, headers = request(host, port, "GET", f"/jobs/{job_id}/labels")
        assert status == 200
        assert headers["Cache-Control"] == "public, max-age=86400, immutable"
        etag = headers["ETag"]
        assert etag.startswith('"') and etag.endswith('"')

        status, body, headers = request(
            host, port, "GET", f"/jobs/{job_id}/labels",
            headers={"If-None-Match": etag},
        )
        assert status == 304 and body is None
        assert headers["ETag"] == etag

    def test_running_labels_are_no_store(self, live):
        host, port, service = live
        with held_backend() as (backend, started, release):
            _, submitted, _ = request(
                host, port, "POST", "/jobs",
                body=job_payload(seed=8, backend=backend),
            )
            job_id = submitted["id"]
            assert started.wait(timeout=60)
            status, page, headers = request(
                host, port, "GET", f"/jobs/{job_id}/labels"
            )
            assert status == 200
            assert page["terminal"] is False
            assert headers["Cache-Control"] == "no-store"
            assert "ETag" not in headers
            release.set()
            service.engine.get_job(job_id).result(timeout=120)

    def test_error_mapping(self, live):
        host, port, _ = live
        assert request(host, port, "GET", "/jobs/job-404")[0] == 404
        assert request(host, port, "DELETE", "/jobs/job-404")[0] == 404
        assert request(host, port, "GET", "/nowhere")[0] == 404
        # Malformed documents are 400s, with the offending key named.
        status, error, _ = request(
            host, port, "POST", "/jobs", body={"dataset": {"generator": "nope"}}
        )
        assert status == 400 and "nope" in error["error"]
        status, error, _ = request(
            host, port, "POST", "/jobs", body=job_payload(surprise=1)
        )
        assert status == 400 and "surprise" in error["error"]

    def test_delete_unregisters(self, live):
        host, port, _ = live
        _, submitted, _ = request(host, port, "POST", "/jobs", body=job_payload(seed=9))
        job_id = submitted["id"]
        status, body, _ = request(host, port, "DELETE", f"/jobs/{job_id}")
        assert status == 200 and body == {"deleted": True, "id": job_id}
        assert request(host, port, "GET", f"/jobs/{job_id}")[0] == 404

    def test_healthz(self, live):
        host, port, _ = live
        import repro

        status, body, _ = request(host, port, "GET", "/healthz")
        assert status == 200
        assert body == {"status": "ok", "version": repro.__version__}


class TestSSE:
    def test_sse_stream_matches_engine_stream_event_for_event(self, live):
        """The acceptance criterion: for a fixed seed, the frames served
        over HTTP equal ``Engine.stream`` on the same wire document."""
        host, port, service = live
        payload = job_payload(seed=12, num_records=12)
        _, submitted, _ = request(host, port, "POST", "/jobs", body=payload)
        status, streamed = read_sse(host, port, f"/jobs/{submitted['id']}/events")
        assert status == 200

        expected = [
            event_to_dict(event)
            for event in Engine().stream(spec_from_dict(payload))
        ]
        assert streamed == expected
        assert streamed[0]["kind"] == "run_started"
        assert streamed[-1]["kind"] == "run_finished"

    def test_sse_replays_history_for_late_subscribers(self, live):
        host, port, service = live
        _, submitted, _ = request(host, port, "POST", "/jobs", body=job_payload(seed=13))
        job_id = submitted["id"]
        service.engine.get_job(job_id).result(timeout=120)
        # Job already finished: the stream still serves the full history.
        _, frames = read_sse(host, port, f"/jobs/{job_id}/events")
        assert frames[0]["kind"] == "run_started"
        assert frames[-1]["kind"] == "run_finished"

    def test_sse_unknown_job_is_404_not_a_stream(self, live):
        host, port, _ = live
        assert request(host, port, "GET", "/jobs/job-404/events")[0] == 404

    def test_close_terminates_inflight_sse_stream(self):
        """Graceful shutdown: a client blocked on a live stream sees clean
        end-of-stream when the service closes, not a hang."""
        with held_backend() as (backend, started, release):
            service = LabelingService(max_workers=1)
            server = start_server(service, port=0)
            host, port = server.server_address[:2]
            try:
                _, submitted, _ = request(
                    host, port, "POST", "/jobs",
                    body=job_payload(seed=14, backend=backend),
                )
                assert started.wait(timeout=60)
                outcome: dict = {}

                def consume():
                    outcome["frames"] = read_sse(
                        host, port, f"/jobs/{submitted['id']}/events"
                    )[1]

                reader = threading.Thread(target=consume)
                reader.start()
                # The job is pinned RUNNING, so the stream cannot end on its
                # own; close() must wake and terminate it.
                service.close(wait=False)
                reader.join(timeout=30)
                assert not reader.is_alive(), "SSE stream survived close()"
            finally:
                release.set()
                server.shutdown()
                server.server_close()
                service.close(wait=False)

    def test_delete_terminates_that_jobs_stream(self, live):
        host, port, service = live
        with held_backend() as (backend, started, release):
            _, submitted, _ = request(
                host, port, "POST", "/jobs",
                body=job_payload(seed=15, backend=backend),
            )
            job_id = submitted["id"]
            assert started.wait(timeout=60)
            outcome: dict = {}

            def consume():
                outcome["frames"] = read_sse(host, port, f"/jobs/{job_id}/events")[1]

            reader = threading.Thread(target=consume)
            reader.start()
            request(host, port, "DELETE", f"/jobs/{job_id}")
            reader.join(timeout=30)
            assert not reader.is_alive(), "SSE stream survived DELETE"
            release.set()

    def test_failed_job_ends_stream_with_failure_frame(self, live):
        host, port, service = live
        name = "exploding-simulated"

        def factory(**kwargs):
            raise RuntimeError("backend exploded")

        register_backend(name, factory)
        try:
            _, submitted, _ = request(
                host, port, "POST", "/jobs", body=job_payload(seed=16, backend=name)
            )
            job_id = submitted["id"]
            job = service.engine.get_job(job_id)
            assert job.wait(timeout=60) is JobStatus.FAILED
            _, frames = read_sse(host, port, f"/jobs/{job_id}/events")
            assert frames[-1]["kind"] == "job_failed"
            assert "backend exploded" in frames[-1]["error"]
            status, detail, _ = request(host, port, "GET", f"/jobs/{job_id}")
            assert detail["status"] == "failed"
            assert "backend exploded" in detail["error"]
        finally:
            unregister_backend(name)


class TestCoalescedAndPooledStreams:
    """SSE framing is independent of how events were emitted — singly, in
    coalesced batches, or replayed from a worker process's pipe."""

    @contextmanager
    def _live_service(self, **engine_kwargs):
        service = LabelingService(engine=Engine(max_workers=2, **engine_kwargs))
        server = start_server(service, port=0)
        try:
            host, port = server.server_address[:2]
            yield host, port, service
        finally:
            server.shutdown()
            server.server_close()
            service.close(wait=False)

    def _sse_frames(self, payload, **engine_kwargs):
        with self._live_service(**engine_kwargs) as (host, port, _):
            _, submitted, _ = request(host, port, "POST", "/jobs", body=payload)
            status, frames = read_sse(host, port, f"/jobs/{submitted['id']}/events")
            assert status == 200
            return frames

    def test_sse_identical_singly_vs_batched_emission(self):
        payload = job_payload(seed=21, num_records=12)
        singly = self._sse_frames(payload, emit_batch_size=1)
        coalesced = self._sse_frames(payload, emit_batch_size=64)
        assert coalesced == singly
        assert singly[0]["kind"] == "run_started"
        assert singly[-1]["kind"] == "run_finished"

    def test_sse_identical_for_process_executor(self):
        payload = job_payload(seed=22, num_records=12)
        threaded = self._sse_frames(payload, executor="thread")
        pooled = self._sse_frames(payload, executor="process")
        assert pooled == threaded

    def test_shutdown_wakes_stream_blocked_mid_batch(self):
        """close() must end an SSE consumer parked between coalesced
        deliveries: a held job emits nothing, the reader blocks after the
        history replay, and the stop-then-interrupt shutdown unblocks it."""
        with held_backend("held-midbatch") as (name, started, release):
            service = LabelingService(engine=Engine(max_workers=1))
            server = start_server(service, port=0)
            host, port = server.server_address[:2]
            frames = []
            payload = job_payload(seed=23, num_records=10, backend=name)
            _, submitted, _ = request(host, port, "POST", "/jobs", body=payload)
            reader = threading.Thread(
                target=lambda: frames.append(
                    read_sse(host, port, f"/jobs/{submitted['id']}/events")
                )
            )
            reader.start()
            assert started.wait(timeout=60), "job never reached the backend"
            # The reader is now blocked in stream(): no events, job running.
            service.close(wait=False)
            reader.join(timeout=60)
            alive = reader.is_alive()
            release.set()
            server.shutdown()
            server.server_close()
            assert not alive, "shutdown left the SSE reader blocked"
