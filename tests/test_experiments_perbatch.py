"""Integration tests for the per-batch experiment drivers (Figures 3-14, Table 1).

These run the actual experiment drivers at reduced scale and assert the
*shape* of the paper's claims: who wins and in which direction, not absolute
numbers.
"""

import pytest

from repro.experiments.combined import run_combined_experiment, run_termest_experiment
from repro.experiments.common import format_table, make_labeling_workload
from repro.experiments.pool_maintenance import (
    run_pool_maintenance_experiment,
    slow_task_fraction_by_age,
    worker_age_scatter,
)
from repro.experiments.simulation_claims import (
    run_convergence_experiment,
    run_decoupling_experiment,
    run_ratio_sweep,
    run_routing_policy_experiment,
)
from repro.experiments.straggler import fastest_worker_share, run_straggler_experiment
from repro.experiments.taxonomy import (
    fastest_vs_median_throughput_ratio,
    run_taxonomy_experiment,
)
from repro.experiments.threshold_sweep import run_threshold_sweep


@pytest.fixture(scope="module")
def straggler_result():
    return run_straggler_experiment(num_tasks=40, ratios=(0.75, 1.0), seed=0)


@pytest.fixture(scope="module")
def maintenance_result():
    return run_pool_maintenance_experiment(
        num_tasks=80, complexities={"medium": 5}, seed=0
    )


@pytest.fixture(scope="module")
def combined_result():
    return run_combined_experiment(num_tasks=60, seed=0)


class TestTaxonomyExperiment:
    def test_trace_has_heavy_tail(self):
        result = run_taxonomy_experiment(num_tasks=3000, num_workers=80, seed=0)
        stats = result.trace_statistics
        assert stats.task_latency_p90 > 2 * stats.task_latency_median
        assert stats.worker_mean_latency_max > 10 * stats.worker_mean_latency_min

    def test_headline_rows_have_paper_reference(self):
        result = run_taxonomy_experiment(num_tasks=2000, num_workers=50, seed=0)
        rows = result.headline_rows()
        assert all(len(row) == 3 for row in rows)

    def test_fastest_worker_completes_many_more_tasks(self):
        run_taxonomy_experiment(num_tasks=3000, num_workers=80, seed=0)
        # §4.1: the fastest worker can complete ~8x as many tasks as the median.
        ratio = fastest_vs_median_throughput_ratio(
            __import__("repro.crowd.traces", fromlist=["generate_medical_trace"]).generate_medical_trace(
                __import__("repro.crowd.traces", fromlist=["MedicalDeploymentParameters"]).MedicalDeploymentParameters(
                    num_tasks=3000, num_workers=80
                ),
                seed=0,
            )
        )
        assert ratio > 3.0


class TestStragglerExperiment:
    def test_mitigation_reduces_latency(self, straggler_result):
        for comparison in straggler_result.comparisons:
            assert comparison.latency_speedup > 1.5

    def test_mitigation_reduces_variance(self, straggler_result):
        for comparison in straggler_result.comparisons:
            assert comparison.stddev_reduction > 1.5

    def test_mitigation_costs_more(self, straggler_result):
        for comparison in straggler_result.comparisons:
            assert comparison.cost_increase > 1.0

    def test_fastest_workers_do_most_of_the_work(self, straggler_result):
        run = straggler_result.comparisons[0].with_mitigation
        assert fastest_worker_share(run) > 0.25

    def test_series_are_exposed_for_plots(self, straggler_result):
        stddev_series = straggler_result.per_batch_stddev_series()
        labels_series = straggler_result.labels_over_time_series()
        assert len(stddev_series) == 4
        assert len(labels_series) == 4

    def test_summary_rows_printable(self, straggler_result):
        text = format_table(
            ["R", "speedup", "std reduction", "cost"], straggler_result.summary_rows()
        )
        assert "R" in text


class TestPoolMaintenanceExperiment:
    def test_maintenance_reduces_latency_for_medium_tasks(self, maintenance_result):
        comparison = maintenance_result.comparisons[0]
        assert comparison.latency_speedup > 1.1

    def test_maintenance_does_not_explode_cost(self, maintenance_result):
        comparison = maintenance_result.comparisons[0]
        assert comparison.cost_ratio < 1.3

    def test_worker_age_scatter_shows_purging(self, maintenance_result):
        comparison = maintenance_result.comparisons[0]
        points = worker_age_scatter(comparison)
        assert len(points) > 0
        maintained_slow = slow_task_fraction_by_age(points, age_cutoff=5, maintained=True)
        unmaintained_slow = slow_task_fraction_by_age(points, age_cutoff=5, maintained=False)
        assert maintained_slow <= unmaintained_slow

    def test_figure3_series_reach_total_records(self, maintenance_result):
        comparison = maintenance_result.comparisons[0]
        series = comparison.labels_over_time()
        assert series["maintained"][-1][1] == 400
        assert series["unmaintained"][-1][1] == 400

    def test_figure6_mpl_lower_with_maintenance(self, maintenance_result):
        comparison = maintenance_result.comparisons[0]
        curves = comparison.mean_pool_latency_curves()
        maintained_tail = [m for _, m in curves["maintained"][-3:] if m is not None]
        unmaintained_tail = [m for _, m in curves["unmaintained"][-3:] if m is not None]
        assert sum(maintained_tail) / len(maintained_tail) < sum(unmaintained_tail) / len(
            unmaintained_tail
        )


class TestThresholdSweep:
    def test_lower_thresholds_replace_more_workers(self):
        result = run_threshold_sweep(
            thresholds=(2.0, 32.0, None), num_tasks=60, seed=0
        )
        by_threshold = {run.threshold: run.total_replacements for run in result.runs}
        assert by_threshold[2.0] >= by_threshold[32.0]
        assert by_threshold[None] == 0

    def test_percentile_rows_structure(self):
        result = run_threshold_sweep(thresholds=(8.0, None), num_tasks=40, seed=0)
        rows = result.percentile_rows()
        assert all(len(row) == 5 for row in rows)

    def test_best_threshold_is_finite(self):
        result = run_threshold_sweep(thresholds=(8.0, None), num_tasks=40, seed=0)
        assert result.best_threshold() in (8.0, None)


class TestCombinedExperiment:
    def test_full_configuration_beats_baseline(self, combined_result):
        assert combined_result.speedup_over_baseline("SM/PM8") > 1.5

    def test_variance_reduction_over_baseline(self, combined_result):
        assert combined_result.stddev_reduction_over_baseline("SM/PM8") > 1.0

    def test_all_four_configurations_present(self, combined_result):
        assert set(combined_result.runs) == {"NoSM/PMinf", "NoSM/PM8", "SM/PMinf", "SM/PM8"}

    def test_assignment_timelines_nonempty(self, combined_result):
        timelines = combined_result.assignment_timelines()
        assert all(len(records) > 0 for records in timelines.values())


class TestTermEstExperiment:
    def test_termest_restores_replacement_rate(self):
        result = run_termest_experiment(num_tasks=60, seed=0)
        assert result.replacements_with > result.replacements_without
        assert result.replacements_with >= 0.5 * max(1, result.replacements_reference)


class TestSimulationClaims:
    def test_routing_policies_are_roughly_equivalent(self):
        result = run_routing_policy_experiment(num_tasks=60, seed=0)
        assert len(result.latencies) == 4
        assert result.max_relative_spread() < 0.6

    def test_ratio_sweep_latency_decreases(self):
        result = run_ratio_sweep(ratios=(0.5, 3.0), num_tasks=40, seed=0)
        assert result.latency_decreases_with_ratio()

    def test_maintained_pool_converges_toward_fast_mean(self):
        result = run_convergence_experiment(num_batches=15, seed=0)
        assert result.converged_toward_fast_mean()
        assert result.q > 0
        assert result.mu_fast < result.mu_slow
        assert len(result.predicted_mpl) == len(result.observed_mpl) + 1

    def test_decoupling_does_not_hurt(self):
        result = run_decoupling_experiment(num_tasks=30, seed=0)
        # Decoupling should be at least roughly as fast as the naive combination.
        assert result.decoupled.total_latency <= result.naive.total_latency * 1.2

    def test_workload_helper_validates(self):
        with pytest.raises(ValueError):
            make_labeling_workload(num_records=0)
