"""Unit tests for latency/cost metrics and the Problem-1 objective."""

import numpy as np
import pytest

from repro.core.config import PayRates
from repro.core.metrics import (
    BatchMetrics,
    CostModel,
    RunMetrics,
    crowd_labeling_objective,
    speedup_factor,
    variance_reduction_factor,
)
from repro.crowd.platform import SimulatedCrowdPlatform


def make_batch(index=0, start=0.0, end=10.0, latencies=(3.0, 7.0, 10.0)):
    return BatchMetrics(
        batch_index=index,
        dispatched_at=start,
        completed_at=end,
        num_tasks=len(latencies),
        num_records=len(latencies),
        task_latencies=list(latencies),
    )


class TestCostModel:
    def test_waiting_cost_per_minute(self):
        model = CostModel(PayRates(waiting_per_minute=0.06, per_record=0.0))
        assert model.waiting_cost(600.0) == pytest.approx(0.60)

    def test_labeling_cost_per_record(self):
        model = CostModel(PayRates(waiting_per_minute=0.0, per_record=0.02))
        assert model.labeling_cost(50) == pytest.approx(1.0)

    def test_total_cost_counts_terminated_work(self, small_population):
        platform = SimulatedCrowdPlatform(small_population, seed=0)
        platform.initialize_pool(2)
        from repro.crowd.tasks import Task

        task = Task(task_id=0, record_ids=[0], true_labels=[1])
        a1 = platform.start_assignment(task, platform.pool.worker_ids[0])
        platform.terminate_assignment(a1)
        platform.settle()
        model = CostModel()
        assert model.total_cost(platform) > 0


class TestBatchMetrics:
    def test_latency_and_stats(self):
        batch = make_batch()
        assert batch.batch_latency == pytest.approx(10.0)
        assert batch.task_latency_mean == pytest.approx(np.mean([3.0, 7.0, 10.0]))
        assert batch.task_latency_std == pytest.approx(np.std([3.0, 7.0, 10.0], ddof=1))

    def test_std_zero_for_single_task(self):
        batch = make_batch(latencies=(5.0,))
        assert batch.task_latency_std == 0.0


class TestRunMetrics:
    def test_aggregations(self):
        metrics = RunMetrics()
        metrics.add_batch(make_batch(0, 0.0, 10.0))
        metrics.add_batch(make_batch(1, 10.0, 30.0))
        assert metrics.num_batches == 2
        assert metrics.mean_batch_latency() == pytest.approx(15.0)
        assert metrics.batch_latency_std() == pytest.approx(np.std([10.0, 20.0], ddof=1))
        assert len(metrics.task_latencies()) == 6

    def test_throughput(self):
        metrics = RunMetrics()
        metrics.records_labeled = 100
        metrics.total_wall_clock = 50.0
        assert metrics.throughput_labels_per_second() == pytest.approx(2.0)

    def test_throughput_zero_wall_clock(self):
        assert RunMetrics().throughput_labels_per_second() == 0.0

    def test_labels_over_time_passthrough(self):
        metrics = RunMetrics()
        metrics.labels_per_second_curve = [(1.0, 5), (2.0, 10)]
        assert metrics.labels_over_time() == [(1.0, 5), (2.0, 10)]


class TestObjective:
    def test_weighted_sum(self):
        objective = crowd_labeling_objective(100.0, 10.0, beta=0.9)
        assert objective.weighted_sum == pytest.approx(0.9 * 100 + 0.1 * 10)
        assert objective.paper_metric == pytest.approx(1.0 / objective.weighted_sum)

    def test_invalid_beta_rejected(self):
        with pytest.raises(ValueError):
            crowd_labeling_objective(1.0, 1.0, beta=2.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            crowd_labeling_objective(-1.0, 1.0, beta=0.5)

    def test_zero_denominator_gives_infinity(self):
        assert crowd_labeling_objective(0.0, 0.0, beta=0.5).paper_metric == float("inf")


class TestRatios:
    def test_variance_reduction(self):
        baseline = [10.0, 50.0, 90.0]
        optimized = [10.0, 11.0, 12.0]
        assert variance_reduction_factor(baseline, optimized) > 1.0

    def test_variance_reduction_requires_two_samples(self):
        with pytest.raises(ValueError):
            variance_reduction_factor([1.0], [1.0, 2.0])

    def test_variance_reduction_zero_optimized_std(self):
        assert variance_reduction_factor([1.0, 5.0], [2.0, 2.0]) == float("inf")

    def test_speedup_factor(self):
        assert speedup_factor(100.0, 25.0) == pytest.approx(4.0)

    def test_speedup_factor_invalid(self):
        with pytest.raises(ValueError):
            speedup_factor(10.0, 0.0)

    def test_speedup_factor_rejects_zero_baseline(self):
        # Used to slip through the `< 0` check and return a nonsensical 0x
        # speedup despite the "must be positive" error message.
        with pytest.raises(ValueError):
            speedup_factor(0.0, 10.0)
        with pytest.raises(ValueError):
            speedup_factor(-1.0, 10.0)
