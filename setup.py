"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so the package can be installed in fully offline environments (no access to
PyPI for build isolation, no ``wheel`` package) via::

    pip install -e . --no-build-isolation --no-use-pep517

which falls back to the classic ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
