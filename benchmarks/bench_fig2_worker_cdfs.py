"""Figure 2: CDFs of per-worker mean and standard-deviation latency."""

from conftest import report, run_once

from repro.experiments.taxonomy import run_taxonomy_experiment


def test_fig2_worker_latency_cdfs(benchmark, seed):
    result = run_once(
        benchmark, lambda: run_taxonomy_experiment(num_tasks=20_000, num_workers=300, seed=seed)
    )
    quantiles = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)
    rows = [
        [
            f"p{int(q * 100)}",
            round(result.mean_latency_cdf.quantile(q) / 60.0, 2),
            round(result.std_latency_cdf.quantile(q) / 60.0, 2),
        ]
        for q in quantiles
    ]
    report(
        "Figure 2 — per-worker latency CDFs (minutes)",
        ["quantile", "mean latency", "std latency"],
        rows,
    )
    # The paper's observation: means span tens of seconds to hours.
    assert result.mean_latency_cdf.quantile(0.99) > 10 * result.mean_latency_cdf.quantile(0.1)
