"""Figure 10: points labeled over time with and without straggler mitigation."""

from conftest import report, run_once

from repro.experiments.straggler import run_straggler_experiment


def test_fig10_labels_over_time(benchmark, seed):
    result = run_once(
        benchmark,
        lambda: run_straggler_experiment(num_tasks=80, ratios=(0.75, 1.0, 3.0), seed=seed),
    )
    rows = []
    for name, series in result.labels_over_time_series().items():
        if not series:
            continue
        rows.append([name, round(series[-1][0], 1), series[-1][1]])
    report(
        "Figure 10 — time to label the workload (paper: up to 5x faster with SM)",
        ["config", "total seconds", "labels"],
        rows,
    )
    for comparison in result.comparisons:
        assert comparison.latency_speedup > 1.5
