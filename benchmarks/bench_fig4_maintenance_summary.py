"""Figure 4: end-to-end latency and cost with and without pool maintenance."""

from conftest import report, run_once

from repro.experiments.pool_maintenance import run_pool_maintenance_experiment


def test_fig4_maintenance_cost_latency(benchmark, seed):
    result = run_once(
        benchmark, lambda: run_pool_maintenance_experiment(num_tasks=120, seed=seed)
    )
    report(
        "Figure 4 — pool maintenance summary (paper: 1.3-1.8x latency, 7-16% cost savings)",
        ["complexity", "latency PM8", "latency PMinf", "speedup", "cost PM8", "cost PMinf", "cost ratio"],
        result.summary_rows(),
    )
    medium = [c for c in result.comparisons if c.complexity == "medium"][0]
    complex_cmp = [c for c in result.comparisons if c.complexity == "complex"][0]
    assert medium.latency_speedup > 1.1
    assert complex_cmp.latency_speedup > 1.1
