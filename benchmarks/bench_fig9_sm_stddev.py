"""Figure 9: straggler mitigation's effect on per-batch latency standard deviation."""

import numpy as np
from conftest import report, run_once

from repro.experiments.straggler import run_straggler_experiment


def test_fig9_per_batch_stddev(benchmark, seed):
    result = run_once(
        benchmark,
        lambda: run_straggler_experiment(num_tasks=80, ratios=(0.75, 1.0, 3.0), seed=seed),
    )
    series = result.per_batch_stddev_series()
    rows = [
        [name, round(float(np.mean(values)), 2), round(float(np.max(values)), 2)]
        for name, values in series.items()
        if values
    ]
    report(
        "Figure 9 — per-batch task-latency std dev (paper: 5-10x lower with SM)",
        ["config", "mean std (s)", "max std (s)"],
        rows,
    )
    for comparison in result.comparisons:
        assert comparison.stddev_reduction > 1.5
