"""§4.1 / §4.2 simulation claims: routing policy, R sweep, convergence, QC decoupling."""

from conftest import report, run_once

from repro.experiments.simulation_claims import (
    run_convergence_experiment,
    run_decoupling_experiment,
    run_ratio_sweep,
    run_routing_policy_experiment,
)


def test_sim_routing_policy_irrelevance(benchmark, seed):
    result = run_once(benchmark, lambda: run_routing_policy_experiment(num_tasks=90, seed=seed))
    report(
        "S4.1 — straggler routing policies (paper: random matches the oracle)",
        ["policy", "mean batch latency (s)"],
        result.rows(),
    )
    assert result.max_relative_spread() < 0.6


def test_sim_pool_batch_ratio_sweep(benchmark, seed):
    result = run_once(
        benchmark, lambda: run_ratio_sweep(ratios=(0.5, 1.0, 2.0, 3.0), num_tasks=60, seed=seed)
    )
    report(
        "S4.1 — batch latency vs pool-to-batch ratio R (mitigation on)",
        ["R", "mean batch latency (s)", "batch latency std (s)"],
        result.rows(),
    )
    assert result.latency_decreases_with_ratio()


def test_sim_maintenance_convergence_model(benchmark, seed):
    result = run_once(benchmark, lambda: run_convergence_experiment(num_batches=25, seed=seed))
    rows = [
        [index, round(observed, 2), round(predicted, 2)]
        for index, (observed, predicted) in enumerate(
            zip(result.observed_mpl, result.predicted_mpl, strict=False)
        )
    ]
    report(
        "S4.2 — observed MPL vs analytic convergence model "
        f"(mu_fast={result.mu_fast:.1f}s, mu_slow={result.mu_slow:.1f}s, q={result.q:.2f})",
        ["maintenance step", "observed MPL (s)", "model prediction (s)"],
        rows,
    )
    assert result.converged_toward_fast_mean()


def test_sim_quality_control_decoupling(benchmark, seed):
    result = run_once(benchmark, lambda: run_decoupling_experiment(num_tasks=40, seed=seed))
    report(
        "S4.1 — decoupling SM from quality control (paper: up to 30% improvement)",
        ["scheme", "total latency (s)", "cost ($)"],
        result.rows(),
    )
    assert result.decoupled.total_latency <= result.naive.total_latency * 1.2
