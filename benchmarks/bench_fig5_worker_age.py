"""Figure 5: per-label latency versus worker age, with and without maintenance."""

from conftest import report, run_once

from repro.experiments.pool_maintenance import (
    run_pool_maintenance_experiment,
    slow_task_fraction_by_age,
    worker_age_scatter,
)


def test_fig5_worker_age_vs_latency(benchmark, seed):
    result = run_once(
        benchmark,
        lambda: run_pool_maintenance_experiment(
            num_tasks=120, complexities={"medium": 5, "complex": 10}, seed=seed
        ),
    )
    rows = []
    for comparison in result.comparisons:
        points = worker_age_scatter(comparison)
        for maintained in (True, False):
            for cutoff in (0, 5, 15):
                fraction = slow_task_fraction_by_age(points, cutoff, maintained)
                rows.append(
                    [
                        comparison.complexity,
                        "PM8" if maintained else "PMinf",
                        f">={cutoff} tasks",
                        round(fraction, 3),
                    ]
                )
    report(
        "Figure 5 — fraction of slow (>=8 s/label) tasks by worker age",
        ["complexity", "config", "worker age", "slow fraction"],
        rows,
    )
    # With maintenance, experienced workers should produce (at most) as many
    # slow tasks as without it.
    for comparison in result.comparisons:
        points = worker_age_scatter(comparison)
        assert slow_task_fraction_by_age(points, 5, True) <= slow_task_fraction_by_age(
            points, 5, False
        ) + 0.05
