"""Figure 8: task-latency percentiles by threshold and worker-age slice."""

from conftest import report, run_once

from repro.experiments.threshold_sweep import run_threshold_sweep


def test_fig8_latency_percentiles_vs_threshold(benchmark, seed):
    result = run_once(
        benchmark,
        lambda: run_threshold_sweep(
            thresholds=(2.0, 8.0, 32.0, None), num_tasks=100, seed=seed
        ),
    )
    report(
        "Figure 8 — per-label latency percentiles by threshold and worker age (seconds)",
        ["threshold", "age slice", "p50", "p95", "p99"],
        [
            [row[0], row[1]] + [round(value, 2) for value in row[2:]]
            for row in result.percentile_rows()
        ],
    )
    best = result.best_threshold()
    # Some finite threshold should beat maintenance-off on tail latency.
    assert best is not None
