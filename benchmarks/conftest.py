"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
(§6) on the simulated crowd substrate and prints the reproduced rows/series.
Run them with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the reproduced tables inline; without it they are
captured but the benchmark timings are still reported.  Absolute numbers are
not expected to match the paper (the substrate is a simulator, not MTurk);
the *shape* — who wins and by roughly what factor — is what each benchmark
reproduces, and EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import format_table


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are end-to-end simulations, so a single round is both
    representative and keeps the whole harness fast.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def report(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print a reproduced table with a header line."""
    print(f"\n=== {title} ===")
    print(format_table(headers, rows))


@pytest.fixture(scope="session")
def seed():
    """A single seed shared by all benchmarks so results are reproducible."""
    return 0
