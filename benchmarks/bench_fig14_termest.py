"""Figure 14: worker replacement rate with and without TermEst (alpha = 1)."""

from conftest import report, run_once

from repro.experiments.combined import run_termest_experiment


def test_fig14_termest_replacement_rate(benchmark, seed):
    result = run_once(benchmark, lambda: run_termest_experiment(num_tasks=100, seed=seed))
    report(
        "Figure 14 — replacements per run (paper: TermEst restores the NoSM rate)",
        ["configuration", "workers replaced"],
        result.summary_rows(),
    )
    assert result.replacements_with > result.replacements_without
