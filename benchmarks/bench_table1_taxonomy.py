"""Table 1 + §2.1 statistics: the latency-source taxonomy on the medical trace."""

from conftest import report, run_once

from repro.experiments.taxonomy import run_taxonomy_experiment


def test_table1_latency_taxonomy(benchmark, seed):
    result = run_once(
        benchmark, lambda: run_taxonomy_experiment(num_tasks=20_000, num_workers=200, seed=seed)
    )
    taxonomy_rows = [
        [source.granularity, source.source, source.addressed_by,
         round(source.median, 1) if source.median is not None else "-"]
        for source in result.taxonomy.sources
    ]
    report(
        "Table 1 — sources of labeling latency (median seconds where measurable)",
        ["granularity", "source", "addressed by", "median"],
        taxonomy_rows,
    )
    report(
        "S2.1 deployment statistics (measured vs paper)",
        ["statistic", "measured", "paper"],
        result.headline_rows(),
    )
    stats = result.trace_statistics
    assert stats.task_latency_p90 > 2 * stats.task_latency_median
