"""Engine-vs-facade overhead on the e2e headline workload.

The api_redesign promise: the new ``Engine``/``JobSpec`` execution path adds
no meaningful overhead over the legacy ``CLAMShell.run()`` facade — both
funnel through ``repro.api.engine.build_run`` and the same Batcher loop, so
the per-run difference should be noise (< 5%).

This benchmark runs the §6.6 headline configuration (full CLAMShell on the
MNIST stand-in) through both entry points, alternating, and reports the
median wall-clock per path plus the relative overhead.
"""

from __future__ import annotations

import statistics
import time

from conftest import report, run_once

from repro.api import Engine, JobSpec
from repro.core.clamshell import CLAMShell
from repro.core.config import full_clamshell
from repro.experiments.common import mixed_speed_population
from repro.learning.datasets import make_mnist_like

NUM_RECORDS = 250
POOL_SIZE = 10
REPS = 3


def _facade_run(dataset, seed):
    system = CLAMShell(
        config=full_clamshell(pool_size=POOL_SIZE, seed=seed),
        dataset=dataset,
        population=mixed_speed_population(seed=seed),
    )
    return system.run(num_records=NUM_RECORDS)


def _engine_run(dataset, seed):
    spec = JobSpec(
        dataset=dataset,
        config=full_clamshell(pool_size=POOL_SIZE, seed=seed),
        population=mixed_speed_population(seed=seed),
        num_records=NUM_RECORDS,
    )
    return Engine().run(spec)


def _measure(dataset, seed):
    facade_times, engine_times = [], []
    facade_result = engine_result = None
    for _ in range(REPS):  # alternate paths so drift hits both equally
        # repro: allow[REPRO-D104] -- overhead benchmark times the wall, by design
        start = time.perf_counter()
        facade_result = _facade_run(dataset, seed)
        # repro: allow[REPRO-D104] -- overhead benchmark times the wall, by design
        facade_times.append(time.perf_counter() - start)

        # repro: allow[REPRO-D104] -- overhead benchmark times the wall, by design
        start = time.perf_counter()
        engine_result = _engine_run(dataset, seed)
        # repro: allow[REPRO-D104] -- overhead benchmark times the wall, by design
        engine_times.append(time.perf_counter() - start)
    return facade_times, engine_times, facade_result, engine_result


def test_engine_overhead_under_5_percent(benchmark, seed):
    dataset = make_mnist_like(n_samples=2500, n_features=256, seed=seed)
    facade_times, engine_times, facade_result, engine_result = run_once(
        benchmark, lambda: _measure(dataset, seed)
    )

    facade_median = statistics.median(facade_times)
    engine_median = statistics.median(engine_times)
    overhead = (engine_median - facade_median) / facade_median

    report(
        "Engine-vs-facade overhead on the e2e headline workload "
        f"({NUM_RECORDS} records, pool {POOL_SIZE}, median of {REPS})",
        ["path", "median seconds", "overhead vs facade"],
        [
            ["CLAMShell.run (facade)", facade_median, "-"],
            ["Engine.run (JobSpec)", engine_median, f"{overhead:+.1%}"],
        ],
    )

    # Identical execution path => identical simulated outcome...
    assert engine_result.labels == facade_result.labels
    assert (
        engine_result.metrics.total_wall_clock
        == facade_result.metrics.total_wall_clock
    )
    # ...and negligible real-time overhead.
    assert overhead < 0.05, f"engine overhead {overhead:.1%} exceeds 5%"
