"""Figure 7: workers replaced over a run as the maintenance threshold varies."""

from conftest import report, run_once

from repro.experiments.threshold_sweep import run_threshold_sweep


def test_fig7_replacement_rate_vs_threshold(benchmark, seed):
    result = run_once(
        benchmark,
        lambda: run_threshold_sweep(
            thresholds=(2.0, 4.0, 8.0, 16.0, 32.0, None), num_tasks=100, seed=seed
        ),
    )
    report(
        "Figure 7 — workers replaced per run vs maintenance threshold",
        ["threshold", "replacements", "mean batch latency", "batch latency std"],
        result.replacement_rows(),
    )
    by_threshold = {run.threshold: run.total_replacements for run in result.runs}
    # Lower thresholds replace at least as many workers as higher ones.
    assert by_threshold[2.0] >= by_threshold[32.0]
    assert by_threshold[None] == 0
