"""Figure 17: wall-clock time to reach accuracy thresholds for the three strategies."""

from conftest import report, run_once

from repro.experiments.end_to_end import run_end_to_end_experiment


def test_fig17_time_to_accuracy(benchmark, seed):
    result = run_once(
        benchmark,
        lambda: run_end_to_end_experiment(num_records=250, pool_size=10, seed=seed),
    )
    for comparison in result.comparisons:
        report(
            f"Figure 17 — seconds to reach accuracy thresholds on {comparison.dataset_name}"
            " (paper: CLAMShell 4-5x faster than Base-NR to 75%)",
            ["threshold", "CLAMShell", "Base-R", "Base-NR"],
            comparison.time_to_accuracy_rows((0.60, 0.65, 0.70, 0.75, 0.80)),
        )
    for comparison in result.comparisons:
        speedup = comparison.speedup_to_accuracy(0.65)
        if speedup is not None:
            assert speedup > 1.5
