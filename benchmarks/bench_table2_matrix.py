"""Table 2: the technique impact matrix, derived from measured runs."""

from conftest import report, run_once

from repro.experiments.summary import build_technique_matrix


def test_table2_technique_matrix(benchmark, seed):
    matrix = run_once(
        benchmark,
        lambda: build_technique_matrix(
            num_tasks=60, pool_size=12, num_learning_records=100, seed=seed
        ),
    )
    report(
        "Table 2 — technique impact matrix (measured)",
        ["technique", "mean latency", "variance", "cost", "general"],
        matrix.rows(),
    )
    straggler = matrix.by_technique("straggler")
    pool = matrix.by_technique("pool")
    assert straggler.improves_mean_latency and straggler.reduces_variance
    assert straggler.increases_cost
    assert pool.improves_mean_latency
