"""Figure 13: the per-assignment timeline for each SM x PM configuration."""

from conftest import report, run_once

from repro.experiments.combined import run_combined_experiment


def test_fig13_assignment_timeline(benchmark, seed):
    result = run_once(benchmark, lambda: run_combined_experiment(num_tasks=60, seed=seed))
    rows = []
    for label, records in result.assignment_timelines().items():
        completed = [r for r in records if r.completed]
        terminated = [r for r in records if not r.completed]
        longest = max(r.ended_at - r.started_at for r in records)
        rows.append(
            [
                label,
                len(records),
                len(completed),
                len(terminated),
                round(longest, 1),
            ]
        )
    report(
        "Figure 13 — per-assignment view (counts and longest assignment)",
        ["config", "assignments", "completed", "terminated", "longest (s)"],
        rows,
    )
    timelines = result.assignment_timelines()
    # Straggler mitigation terminates assignments; the baseline does not.
    baseline_terminated = sum(1 for r in timelines["NoSM/PMinf"] if not r.completed)
    mitigated_terminated = sum(1 for r in timelines["SM/PM8"] if not r.completed)
    assert mitigated_terminated > baseline_terminated
