"""Figure 6: mean pool latency per batch with and without maintenance."""

import numpy as np
from conftest import report, run_once

from repro.experiments.pool_maintenance import run_pool_maintenance_experiment


def test_fig6_mean_pool_latency(benchmark, seed):
    result = run_once(
        benchmark,
        lambda: run_pool_maintenance_experiment(
            num_tasks=150, complexities={"medium": 5}, seed=seed
        ),
    )
    comparison = result.comparisons[0]
    curves = comparison.mean_pool_latency_curves()
    rows = []
    for index in range(
        max(len(curves["maintained"]), len(curves["unmaintained"]))
    ):
        maintained = (
            round(curves["maintained"][index][1], 1)
            if index < len(curves["maintained"]) and curves["maintained"][index][1] is not None
            else "-"
        )
        unmaintained = (
            round(curves["unmaintained"][index][1], 1)
            if index < len(curves["unmaintained"]) and curves["unmaintained"][index][1] is not None
            else "-"
        )
        rows.append([index, maintained, unmaintained])
    report(
        "Figure 6 — mean pool latency per batch (seconds per task)",
        ["batch", "PM8", "PMinf"],
        rows,
    )
    maintained_tail = np.mean(
        [m for _, m in curves["maintained"][3:] if m is not None]
    )
    unmaintained_tail = np.mean(
        [m for _, m in curves["unmaintained"][3:] if m is not None]
    )
    assert maintained_tail < unmaintained_tail
