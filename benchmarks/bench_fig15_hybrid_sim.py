"""Figure 15: active / passive / hybrid learning on generated datasets (simulator)."""

from conftest import report, run_once

from repro.experiments.hybrid_learning import run_generated_dataset_experiment


def test_fig15_hybrid_on_generated_datasets(benchmark, seed):
    result = run_once(
        benchmark,
        lambda: run_generated_dataset_experiment(
            hardness_levels=(20, 100, 400),
            active_fractions=(0.25, 0.5, 0.75),
            num_records=120,
            pool_size=10,
            n_samples=1500,
            seed=seed,
        ),
    )
    report(
        "Figure 15 — final accuracy by dataset hardness and active fraction r",
        ["dataset", "r", "active", "passive", "hybrid", "best"],
        result.summary_rows(),
    )
    # The paper's claim: hybrid is as good as or better than both pure
    # strategies across the grid (within noise).
    assert result.hybrid_always_competitive(tolerance=0.10)
