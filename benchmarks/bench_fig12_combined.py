"""Figure 12: combining straggler mitigation and pool maintenance (2x2 factorial)."""

from conftest import report, run_once

from repro.experiments.combined import run_combined_experiment


def test_fig12_combined_techniques(benchmark, seed):
    result = run_once(benchmark, lambda: run_combined_experiment(num_tasks=100, seed=seed))
    report(
        "Figure 12 — combined techniques (paper: up to 6x latency, 15x stddev reduction)",
        ["config", "total latency (s)", "batch latency std (s)", "cost ($)"],
        result.summary_rows(),
    )
    assert result.speedup_over_baseline("SM/PM8") > 1.5
    assert result.speedup_over_baseline("SM/PMinf") > 1.5
