"""Figure 11: straggler mitigation cost / latency / variance summary across R."""

from conftest import report, run_once

from repro.experiments.straggler import run_straggler_experiment


def test_fig11_straggler_summary(benchmark, seed):
    result = run_once(
        benchmark,
        lambda: run_straggler_experiment(num_tasks=80, ratios=(0.75, 1.0, 3.0), seed=seed),
    )
    report(
        "Figure 11 — SM summary (paper: cost 1-2x, latency 2.5-5x, variance 4-14x)",
        ["R", "latency speedup", "stddev reduction", "cost increase"],
        result.summary_rows(),
    )
    for comparison in result.comparisons:
        assert comparison.latency_speedup > 1.5
        assert comparison.stddev_reduction > 1.5
        assert comparison.cost_increase > 1.0
