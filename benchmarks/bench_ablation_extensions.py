"""Ablations for the paper's extensions: quality-maintained pools and hybrid re-weighting."""

from conftest import report, run_once

from repro.experiments.extensions import (
    run_quality_maintenance_experiment,
    run_reweighting_ablation,
)


def test_ablation_quality_maintained_pool(benchmark, seed):
    result = run_once(
        benchmark, lambda: run_quality_maintenance_experiment(num_tasks=90, seed=seed)
    )
    report(
        "Extension (S4.2) — maintaining the pool on quality instead of speed",
        ["pool", "label accuracy", "total latency (s)", "replacements"],
        result.rows(),
    )
    assert result.replacements["quality-maintained"] >= 1
    assert (
        result.label_accuracy["quality-maintained"]
        >= result.label_accuracy["unmaintained"] - 0.05
    )


def test_ablation_hybrid_reweighting(benchmark, seed):
    result = run_once(
        benchmark, lambda: run_reweighting_ablation(boosts=(0.5, 1.0, 2.0, 4.0), seed=seed)
    )
    report(
        "Extension (S5.1/S7) — hybrid active-point weight boost",
        ["active weight boost", "final accuracy"],
        result.rows(),
    )
    accuracies = list(result.accuracies.values())
    assert max(accuracies) - min(accuracies) < 0.25
