"""Figure 18: accuracy versus wall-clock time for CLAMShell and both baselines."""

from conftest import report, run_once

from repro.experiments.end_to_end import run_end_to_end_experiment


def test_fig18_learning_curves(benchmark, seed):
    result = run_once(
        benchmark,
        lambda: run_end_to_end_experiment(num_records=250, pool_size=10, seed=seed),
    )
    for comparison in result.comparisons:
        curves = comparison.curves()
        horizon = max(curve.times()[-1] for curve in curves.values())
        checkpoints = [horizon * fraction for fraction in (0.1, 0.25, 0.5, 0.75, 1.0)]
        rows = []
        for seconds in checkpoints:
            rows.append(
                [round(seconds, 1)]
                + [
                    round(curves[name].accuracy_at_time(seconds), 3)
                    for name in ("clamshell", "base_r", "base_nr")
                ]
            )
        report(
            f"Figure 18 — accuracy over wall-clock time on {comparison.dataset_name}"
            " (paper: CLAMShell dominates both baselines)",
            ["seconds", "CLAMShell", "Base-R", "Base-NR"],
            rows,
        )
    for comparison in result.comparisons:
        assert comparison.clamshell_dominates(tolerance=0.06)
