"""Figure 16: active / passive / hybrid learning on the MNIST/CIFAR stand-ins."""

from conftest import report, run_once

from repro.experiments.hybrid_learning import run_real_dataset_experiment


def test_fig16_hybrid_on_real_datasets(benchmark, seed):
    result = run_once(
        benchmark,
        lambda: run_real_dataset_experiment(
            num_records=200, pool_size=10, mnist_features=256, cifar_features=256, seed=seed
        ),
    )
    report(
        "Figure 16 — final accuracy on MNIST-like / CIFAR-like (crowd-timed)",
        ["dataset", "r", "active", "passive", "hybrid", "best"],
        result.summary_rows(),
    )
    rows = []
    for cell in result.cells:
        times = cell.time_to_accuracy(0.65)
        rows.append(
            [cell.dataset_name]
            + [
                round(times[name], 1) if times[name] is not None else "never"
                for name in ("active", "passive", "hybrid")
            ]
        )
    report(
        "Figure 16 — wall-clock seconds to reach 65% accuracy",
        ["dataset", "active", "passive", "hybrid"],
        rows,
    )
    assert result.hybrid_always_competitive(tolerance=0.08)
