"""§6.6 headline numbers: throughput speedup and variance reduction vs Base-NR."""

from conftest import report, run_once

from repro.experiments.end_to_end import headline_numbers, run_end_to_end_experiment


def test_e2e_headline_numbers(benchmark, seed):
    result = run_once(
        benchmark,
        lambda: run_end_to_end_experiment(num_records=250, pool_size=10, seed=seed),
    )
    for comparison in result.comparisons:
        numbers = headline_numbers(comparison)
        report(
            f"S6.6 headline numbers on {comparison.dataset_name} (measured vs paper)",
            ["metric", "measured", "paper"],
            numbers.rows(),
        )
    for comparison in result.comparisons:
        assert comparison.throughput_speedup() > 2.0
        assert comparison.variance_reduction() > 1.5
