"""Figure 3: points labeled over time by task complexity, PM8 vs PMinf."""

from conftest import report, run_once

from repro.experiments.pool_maintenance import run_pool_maintenance_experiment


def test_fig3_labels_over_time(benchmark, seed):
    result = run_once(
        benchmark, lambda: run_pool_maintenance_experiment(num_tasks=120, seed=seed)
    )
    rows = []
    for comparison in result.comparisons:
        series = comparison.labels_over_time()
        for name, curve in series.items():
            if not curve:
                continue
            halfway = curve[len(curve) // 2]
            rows.append(
                [
                    comparison.complexity,
                    name,
                    round(curve[-1][0], 1),
                    curve[-1][1],
                    round(halfway[0], 1),
                    halfway[1],
                ]
            )
    report(
        "Figure 3 — labels over time (end time/count and midpoint time/count)",
        ["complexity", "config", "end_s", "labels", "mid_s", "mid_labels"],
        rows,
    )
    complex_cmp = [c for c in result.comparisons if c.complexity == "complex"][0]
    assert complex_cmp.latency_speedup > 1.0
