"""Training an image classifier with crowd labels: hybrid vs active vs passive.

Reproduces the §6.5 / §6.6 workflow on the MNIST-like stand-in dataset: a
model must be trained to a target accuracy using as little wall-clock time as
possible, with the crowd pool as the bottleneck.  The script compares

* pure active learning (small uncertainty-sampled batches, the Base-R way),
* pure passive learning (random sampling at full pool parallelism), and
* CLAMShell's hybrid learning (active batch + passive filler points),

and prints each strategy's learning curve and time-to-accuracy.

Run with::

    python examples/image_labeling_active_learning.py
"""

from __future__ import annotations

from repro import make_mnist_like
from repro.experiments.hybrid_learning import compare_strategies_on_dataset

TARGET_ACCURACY = 0.55
NUM_LABELS = 250
POOL_SIZE = 10


def main():
    dataset = make_mnist_like(n_samples=2500, n_features=256, seed=1)
    print(
        f"Training a {dataset.num_classes}-class classifier on {dataset.name} "
        f"({dataset.num_features} features) with a pool of {POOL_SIZE} workers "
        f"and a budget of {NUM_LABELS} crowd labels.\n"
    )
    cell = compare_strategies_on_dataset(
        dataset,
        num_records=NUM_LABELS,
        pool_size=POOL_SIZE,
        active_fraction=0.5,
        seed=1,
    )

    print(f"{'strategy':<10} {'labels':>7} {'wall clock':>11} {'final acc':>10} "
          f"{'time to ' + format(TARGET_ACCURACY, '.0%'):>14}")
    for name, curve in cell.curves.items():
        final = curve.points[-1]
        to_target = curve.time_to_accuracy(TARGET_ACCURACY)
        to_target_text = f"{to_target:10.1f} s" if to_target is not None else "     never"
        print(
            f"{name:<10} {final.num_labels:>7} {final.wall_clock_seconds:>9.1f} s "
            f"{final.accuracy:>10.3f} {to_target_text:>14}"
        )

    print("\nLearning curves (accuracy after each batch):")
    for name, curve in cell.curves.items():
        trail = "  ".join(
            f"{p.wall_clock_seconds:6.0f}s:{p.accuracy:.2f}" for p in curve.points[1::2]
        )
        print(f"  {name:<8} {trail}")

    at_time = cell.accuracies_at_common_time()
    best = max(at_time, key=at_time.get)
    print(
        f"\nAt the same wall-clock budget, the best strategy is '{best}' "
        f"({at_time[best]:.3f} accuracy); hybrid achieves {at_time['hybrid']:.3f}."
    )


if __name__ == "__main__":
    main()
