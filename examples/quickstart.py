"""Quickstart: label a dataset with CLAMShell on the simulated crowd.

Runs the full CLAMShell configuration (retainer pool + straggler mitigation +
pool maintenance + hybrid learning) against a baseline deployment, and prints
the latency, cost, and model-accuracy outcomes side by side.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CLAMShell,
    baseline_no_retainer,
    full_clamshell,
    make_cifar_like,
)
from repro.crowd import default_simulation_population


def run_strategy(name, config, dataset, num_records=200):
    """Run one labeling strategy on a fresh simulated crowd and summarise it."""
    population = default_simulation_population(seed=config.seed)
    system = CLAMShell(config=config, dataset=dataset, population=population)
    result = system.run(num_records=num_records)
    print(f"\n--- {name} ({config.describe()}) ---")
    print(f"records labeled     : {result.metrics.records_labeled}")
    print(f"wall-clock time     : {result.metrics.total_wall_clock:8.1f} s")
    print(f"mean batch latency  : {result.metrics.mean_batch_latency():8.1f} s")
    print(f"batch latency stddev: {result.metrics.batch_latency_std():8.1f} s")
    print(f"total cost          : $ {result.total_cost:6.2f}")
    if result.final_accuracy is not None:
        print(f"final model accuracy: {result.final_accuracy:8.3f}")
    return result


def main():
    # A CIFAR-like binary image-classification stand-in (see DESIGN.md for the
    # substitution rationale); 2,000 records, 256 raw features.
    dataset = make_cifar_like(n_samples=2000, n_features=256, seed=0)
    print(f"dataset: {dataset.name} with {dataset.num_records} records, "
          f"{dataset.num_features} features")

    clamshell = run_strategy("CLAMShell", full_clamshell(pool_size=10, seed=0), dataset)
    baseline = run_strategy("Base-NR baseline", baseline_no_retainer(pool_size=10, seed=0), dataset)

    speedup = baseline.metrics.total_wall_clock / clamshell.metrics.total_wall_clock
    print(f"\nCLAMShell labeled the same number of records {speedup:.1f}x faster "
          f"than the unoptimized deployment.")


if __name__ == "__main__":
    main()
