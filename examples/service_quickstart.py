"""Labeling-as-a-service quickstart: drive a live HTTP server end to end.

Starts ``python -m repro serve`` as a subprocess on an ephemeral port, then
exercises every endpoint with nothing but the standard library:

1. ``POST /jobs`` with a JSON :class:`~repro.api.engine.JobSpec` wire
   document (dataset recipe + config + population factory — provenance,
   not payloads, crosses the wire);
2. ``GET /jobs/{id}/events`` — the SSE progress stream, one frame per
   :class:`~repro.api.events.ProgressEvent`;
3. ``GET /jobs/{id}/labels`` — paginated labels, served immutable (ETag +
   ``Cache-Control``) once the job is terminal;
4. ``GET /jobs/{id}`` and ``GET /jobs`` — status, result summary, and
   execution stats;
5. ``DELETE /jobs/{id}`` — unregister and tear down the job's streams.

Run with::

    python examples/service_quickstart.py
"""

from __future__ import annotations

import http.client
import json
import signal
import subprocess
import sys


NUM_RECORDS = 40

JOB_DOCUMENT = {
    "dataset": {
        "generator": "labeling_workload",
        "params": {"num_records": 2 * NUM_RECORDS, "seed": 7},
    },
    "config": {
        "pool_size": 8,
        "straggler_mitigation": True,
        "maintenance_threshold": None,
        "learning_strategy": "none",
        "seed": 7,
    },
    "population": {"factory": "mixed_speed", "seed": 7},
    "num_records": NUM_RECORDS,
    "name": "quickstart",
}


def start_server() -> tuple[subprocess.Popen, str, int]:
    """Launch ``repro serve`` on an ephemeral port and parse its banner."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        text=True,
    )
    banner = process.stdout.readline().strip()
    # "repro service listening on http://127.0.0.1:PORT"
    url = banner.rsplit(" ", 1)[-1]
    host, port = url.removeprefix("http://").split(":")
    print(f"server up at {url}")
    return process, host, int(port)


def request(host: str, port: int, method: str, path: str, body=None):
    connection = http.client.HTTPConnection(host, port, timeout=120)
    try:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        return response.status, json.loads(raw) if raw else None, dict(
            response.getheaders()
        )
    finally:
        connection.close()


def stream_events(host: str, port: int, job_id: str) -> list[dict]:
    """Consume the SSE stream until the server closes the connection."""
    connection = http.client.HTTPConnection(host, port, timeout=300)
    try:
        connection.request("GET", f"/jobs/{job_id}/events")
        response = connection.getresponse()
        assert response.getheader("Content-Type").startswith("text/event-stream")
        body = response.read().decode("utf-8")
    finally:
        connection.close()
    frames = []
    for chunk in body.split("\n\n"):
        data = [
            line[len("data: ") :]
            for line in chunk.splitlines()
            if line.startswith("data: ")
        ]
        if data:
            frames.append(json.loads("\n".join(data)))
    return frames


def main() -> int:
    process, host, port = start_server()
    try:
        status, health, _ = request(host, port, "GET", "/healthz")
        print(f"healthz: {health['status']} (repro {health['version']})")

        status, job, _ = request(host, port, "POST", "/jobs", body=JOB_DOCUMENT)
        assert status == 201, status
        job_id = job["id"]
        print(f"submitted {job_id} ({job['name']!r})")

        frames = stream_events(host, port, job_id)
        for frame in frames:
            if frame["kind"] == "batch_completed":
                print(
                    f"  batch {frame['batch_index']:>2}: "
                    f"+{len(frame['new_labels'])} labels "
                    f"(total {frame['records_labeled']}) "
                    f"sim t={frame['wall_clock']:.1f}s"
                )
        assert frames[-1]["kind"] == "run_finished"
        print(f"stream closed after {len(frames)} events")

        labels = []
        offset = 0
        while True:
            _, page, headers = request(
                host, port, "GET", f"/jobs/{job_id}/labels?offset={offset}&limit=16"
            )
            if not page["labels"]:
                break
            labels.extend(page["labels"])
            offset += len(page["labels"])
        assert len(labels) == NUM_RECORDS, (len(labels), NUM_RECORDS)
        print(
            f"fetched {len(labels)}/{page['total']} labels in pages of 16 "
            f"({headers['Cache-Control']})"
        )

        _, detail, _ = request(host, port, "GET", f"/jobs/{job_id}")
        summary = detail["result"]
        print(
            f"job {detail['status']}: {summary['records_labeled']} records, "
            f"{summary['num_batches']} batches, "
            f"${summary['total_cost']:.2f}, "
            f"sim {summary['total_wall_clock']:.0f}s"
        )

        _, listing, _ = request(host, port, "GET", "/jobs")
        print(f"registry holds {len(listing['jobs'])} job(s)")

        status, _, _ = request(host, port, "DELETE", f"/jobs/{job_id}")
        assert status == 200
        status, _, _ = request(host, port, "GET", f"/jobs/{job_id}")
        assert status == 404
        print("deleted; subsequent GET is 404")
        return 0
    finally:
        process.send_signal(signal.SIGINT)
        process.wait(timeout=30)
        print("server stopped")


if __name__ == "__main__":
    raise SystemExit(main())
