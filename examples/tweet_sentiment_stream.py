"""Live tweet-sentiment labeling during a political debate (Example 1, §3).

The paper motivates CLAMShell with a news outlet that wants to visualise the
public's reaction to a live debate: tweets stream in, a crowd labels their
sentiment ("positive" / "negative" / "neutral"), and the visualisation is only
useful if each batch of labels comes back within seconds and with predictable
latency.

This example simulates that pipeline.  Tweets arrive in small batches; each
batch is labeled by a retainer pool with straggler mitigation and pool
maintenance, and the script reports the per-batch latency distribution that
the dashboard would experience — with and without CLAMShell's per-batch
optimisations.

Run with::

    python examples/tweet_sentiment_stream.py
"""

from __future__ import annotations

import numpy as np

from repro.core.batcher import Batcher
from repro.core.config import CLAMShellConfig, LearningStrategy
from repro.crowd import SimulatedCrowdPlatform
from repro.experiments.common import make_labeling_workload, mixed_speed_population

#: Sentiment classes the crowd chooses among.
SENTIMENTS = ("negative", "neutral", "positive")

#: How many tweets arrive per refresh of the dashboard.
TWEETS_PER_BATCH = 12

#: How many dashboard refreshes we simulate.
NUM_BATCHES = 12


def build_config(optimized: bool) -> CLAMShellConfig:
    """The streaming configuration: one batch per dashboard refresh."""
    return CLAMShellConfig(
        pool_size=TWEETS_PER_BATCH,
        records_per_task=1,
        pool_batch_ratio=1.0,
        straggler_mitigation=optimized,
        maintenance_threshold=8.0 if optimized else None,
        learning_strategy=LearningStrategy.NONE,
        seed=7,
    )


def run_stream(optimized: bool) -> list[float]:
    """Label NUM_BATCHES batches of tweets and return per-batch latencies."""
    total_tweets = TWEETS_PER_BATCH * NUM_BATCHES
    # Tweets with ground-truth sentiment (3 classes) for the simulated workers.
    tweets = make_labeling_workload(num_records=total_tweets, num_classes=3, seed=3)
    config = build_config(optimized)
    platform = SimulatedCrowdPlatform(
        population=mixed_speed_population(seed=11),
        seed=config.seed,
        num_classes=len(SENTIMENTS),
    )
    batcher = Batcher(config=config, dataset=tweets, platform=platform)
    result = batcher.run(num_records=total_tweets)
    return [batch.batch_latency for batch in result.metrics.batches]


def describe(name: str, latencies: list[float]) -> None:
    array = np.array(latencies)
    print(f"\n--- {name} ---")
    print(f"batches                  : {len(latencies)}")
    print(f"mean batch latency       : {array.mean():6.1f} s")
    print(f"worst batch latency      : {array.max():6.1f} s")
    print(f"batch latency std dev    : {array.std(ddof=1):6.1f} s")
    refreshes_within_30s = float(np.mean(array <= 30.0))
    print(f"refreshes within 30 s    : {refreshes_within_30s:6.0%}")


def main():
    print(
        f"Simulating a live sentiment dashboard: {NUM_BATCHES} refreshes of "
        f"{TWEETS_PER_BATCH} tweets each, labeled as {'/'.join(SENTIMENTS)}."
    )
    unoptimized = run_stream(optimized=False)
    optimized = run_stream(optimized=True)
    describe("Plain retainer pool (no SM, no maintenance)", unoptimized)
    describe("CLAMShell per-batch optimisations (SM + PM8)", optimized)

    variance_reduction = np.std(unoptimized, ddof=1) / max(np.std(optimized, ddof=1), 1e-9)
    print(
        f"\nWith straggler mitigation and pool maintenance the dashboard's batch "
        f"latency is {np.mean(unoptimized) / np.mean(optimized):.1f}x lower on average "
        f"and {variance_reduction:.1f}x more predictable."
    )


if __name__ == "__main__":
    main()
