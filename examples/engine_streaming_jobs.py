"""Engine API: stream one labeling job, then run a seed sweep concurrently.

Demonstrates the service-shaped frontend introduced by the api_redesign:

* ``JobSpec`` describes a run (dataset, config, budget, backend);
* ``Engine.submit`` returns a ``LabelingJob`` whose ``stream()`` yields a
  typed ``ProgressEvent`` per batch — the labels-over-time view of Figure 3,
  observable while the run advances instead of after it finishes;
* ``Engine.run_many`` executes several jobs concurrently on a thread pool,
  each deterministic under its own seed.

Run with::

    python examples/engine_streaming_jobs.py
"""

from __future__ import annotations

from repro import Engine, JobSpec, ProgressKind, full_clamshell, make_mnist_like


def stream_one_job(engine: Engine, dataset) -> None:
    """Watch a single run batch by batch."""
    spec = JobSpec(
        dataset=dataset,
        config=full_clamshell(pool_size=10, seed=0),
        num_records=150,
        name="mnist-streaming",
    )
    job = engine.submit(spec)
    print(f"submitted {job.name}; streaming progress:")
    for event in job.stream():
        if event.kind is ProgressKind.BATCH_COMPLETED:
            accuracy = (
                f" acc={event.accuracy_estimate:.3f}"
                if event.accuracy_estimate is not None
                else ""
            )
            print(
                f"  batch {event.batch_index:>2}: +{len(event.new_labels):>2} labels "
                f"(total {event.records_labeled:>3}) "
                f"t={event.wall_clock:7.1f}s pool={event.pool_size}{accuracy}"
            )
    result = job.result()
    print(
        f"finished: {result.metrics.records_labeled} labels, "
        f"final accuracy {result.final_accuracy:.3f}, "
        f"cost ${result.total_cost:.2f}\n"
    )


def concurrent_seed_sweep(engine: Engine, dataset) -> None:
    """Four seeds of the full configuration, executed concurrently."""
    specs = [
        JobSpec(
            dataset=dataset,
            config=full_clamshell(pool_size=10, seed=seed),
            num_records=100,
            name=f"seed-{seed}",
        )
        for seed in range(4)
    ]
    print(f"running {len(specs)} jobs concurrently (max_workers={engine.max_workers})")
    results = engine.run_many(specs)
    for spec, result in zip(specs, results):
        print(
            f"  {spec.name}: {result.metrics.total_wall_clock:7.1f}s simulated, "
            f"accuracy {result.final_accuracy:.3f}"
        )
    print(f"peak concurrency observed: {engine.concurrency_high_water}")


def main() -> None:
    dataset = make_mnist_like(n_samples=2500, n_features=256, seed=0)
    with Engine(max_workers=4) as engine:
        stream_one_job(engine, dataset)
        concurrent_seed_sweep(engine, dataset)


if __name__ == "__main__":
    main()
