"""Crowdsourced entity resolution with quality control and fast crowds.

Data-cleaning systems (the paper cites CrowdER, Corleone, Wisteria) ask crowd
workers whether two records refer to the same real-world entity.  Answers are
noisy, so each pair is labeled by several workers and the votes are combined;
CLAMShell's contribution is making that redundant labeling *fast* without
breaking quality control (§4.1's decoupling of mitigation from redundancy).

This example:

1. builds a synthetic product-catalog matching workload (pairs of records,
   match / non-match ground truth);
2. labels every pair with 3-way redundancy on a simulated crowd, with and
   without straggler mitigation;
3. aggregates votes by majority and by EM-estimated worker accuracy, and
   reports both the label quality and the latency of each configuration.

Run with::

    python examples/entity_resolution_quality_control.py
"""

from __future__ import annotations

import numpy as np

from repro.core.batcher import Batcher
from repro.core.config import CLAMShellConfig, LearningStrategy
from repro.core.quality import VoteAggregator
from repro.crowd import SimulatedCrowdPlatform
from repro.experiments.common import make_labeling_workload, mixed_speed_population

NUM_PAIRS = 120
VOTES_PER_PAIR = 3
POOL_SIZE = 12


def run_resolution(straggler_mitigation: bool):
    """Label all pairs with 3-vote redundancy; return (result, votes, dataset)."""
    pairs = make_labeling_workload(num_records=NUM_PAIRS, num_classes=2, seed=21)
    config = CLAMShellConfig(
        pool_size=POOL_SIZE,
        records_per_task=1,
        votes_required=VOTES_PER_PAIR,
        pool_batch_ratio=1.0,
        straggler_mitigation=straggler_mitigation,
        decouple_quality_control=True,
        maintenance_threshold=8.0,
        learning_strategy=LearningStrategy.NONE,
        seed=5,
    )
    platform = SimulatedCrowdPlatform(
        population=mixed_speed_population(seed=13), seed=5, num_classes=2
    )
    batcher = Batcher(config=config, dataset=pairs, platform=platform)
    result = batcher.run(num_records=NUM_PAIRS)

    votes = VoteAggregator(num_classes=2)
    for outcome in result.batch_outcomes:
        for task in outcome.batch.tasks:
            for worker_id, labels, _ in task.answers:
                for record_id, label in zip(task.record_ids, labels):
                    votes.add_vote(record_id, worker_id, label)
    return result, votes, pairs


def label_quality(consensus, dataset):
    correct = sum(
        1 for record_id, label in consensus.items() if label == int(dataset.y[record_id])
    )
    return correct / len(consensus)


def main():
    print(
        f"Matching {NUM_PAIRS} candidate record pairs with {VOTES_PER_PAIR} votes each "
        f"on a pool of {POOL_SIZE} workers.\n"
    )
    for name, mitigation in (("No straggler mitigation", False), ("Straggler mitigation", True)):
        result, votes, dataset = run_resolution(mitigation)
        majority = votes.consensus()
        quality = votes.estimate_quality()
        weighted = votes.consensus(worker_accuracy=quality.worker_accuracy)

        batch_latencies = result.metrics.batch_latencies()
        print(f"--- {name} ---")
        print(f"wall-clock time          : {result.metrics.total_wall_clock:8.1f} s")
        print(f"mean / max batch latency : {batch_latencies.mean():6.1f} s / {batch_latencies.max():6.1f} s")
        print(f"total cost               : $ {result.total_cost:6.2f}")
        print(f"majority-vote accuracy   : {label_quality(majority, dataset):8.3f}")
        print(f"EM-weighted accuracy     : {label_quality(weighted, dataset):8.3f}")
        estimated = np.array(list(quality.worker_accuracy.values()))
        print(f"estimated worker accuracy: mean {estimated.mean():.2f}, "
              f"min {estimated.min():.2f}, max {estimated.max():.2f}")
        print()

    print(
        "Straggler mitigation shortens the redundant-labeling batches without "
        "changing the quality-control pipeline: the same votes are collected, "
        "just sooner."
    )


if __name__ == "__main__":
    main()
